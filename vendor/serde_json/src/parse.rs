//! Recursive-descent JSON parser producing a [`Content`] tree.

use serde::Content;

use crate::Error;

/// Parse a JSON document into a content tree. Trailing whitespace is
/// allowed; trailing non-whitespace is an error.
pub fn parse_content(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.expect_keyword("null").map(|_| Content::Null),
            Some(b't') => self.expect_keyword("true").map(|_| Content::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|_| Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Content::Seq(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Content::Map(entries)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let first = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: a `\uXXXX` low surrogate
                            // must follow.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a valid &str, so
                    // re-decode the full character from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() {
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Content::I64(v));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}` at byte {start}")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
