//! Vendored, dependency-free stand-in for the `serde` facade used by this
//! workspace. The build environment has no network access and no crates-io
//! mirror, so the workspace patches `serde` to this crate (see the root
//! `Cargo.toml` `[patch.crates-io]` table).
//!
//! Instead of serde's visitor-based data model this crate routes every
//! (de)serialization through one self-describing [`Content`] tree — the
//! JSON data model — which is all the formats this workspace uses need.
//! The derive macros (re-exported from `serde_derive`) generate
//! `to_content` / `from_content` implementations that mirror serde's
//! externally-tagged defaults, so JSON produced by the real serde stack
//! remains readable and vice versa.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree every serializer and deserializer in
/// this workspace speaks. Maps preserve insertion order (struct fields
/// serialize in declaration order, like serde's derived impls).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit `i64`'s positive range or
    /// originated from an unsigned type.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A string-keyed map in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the content kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Look up a field by name in map content (linear scan; structs in this
/// workspace are small).
pub fn content_field<'a>(map: &'a [(String, Content)], name: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an "expected X, found Y while deserializing T" error.
    pub fn expected(expected: &str, found: &Content, ty: &str) -> DeError {
        DeError(format!(
            "expected {expected}, found {} while deserializing {ty}",
            found.kind()
        ))
    }

    /// Build a "missing field" error.
    pub fn missing_field(ty: &str, field: &str) -> DeError {
        DeError(format!("missing field `{field}` of {ty}"))
    }

    /// Build an "unknown variant" error.
    pub fn unknown_variant(ty: &str, variant: &str) -> DeError {
        DeError(format!("unknown variant `{variant}` of {ty}"))
    }

    /// Build an error from any message.
    pub fn custom(msg: impl std::fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into a [`Content`] tree.
pub trait Serialize {
    /// Convert to the self-describing tree.
    fn to_content(&self) -> Content;
}

/// A type that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the self-describing tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// serde-compatible module path for `DeserializeOwned` and the error
/// trait alias (`serde::de::DeserializeOwned` in bounds).
pub mod de {
    /// Owned deserialization — with this crate's lifetime-free
    /// [`crate::Deserialize`], every implementor qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}

    pub use crate::DeError as Error;
}

/// serde-compatible module path for the serialization trait.
pub mod ser {
    pub use crate::Serialize;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::custom("unsigned value out of range"))?,
                    Content::F64(v) if v.fract() == 0.0 => *v as i64,
                    other => return Err(DeError::expected("integer", other, stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| DeError::custom(concat!("value out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) => u64::try_from(*v)
                        .map_err(|_| DeError::custom("negative value for unsigned type"))?,
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => *v as u64,
                    other => return Err(DeError::expected("integer", other, stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| DeError::custom(concat!("value out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    other => Err(DeError::expected("number", other, stringify!($t))),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other, "bool")),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other, "char")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other, "String")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}
impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            other => Err(DeError::expected("null", other, "()")),
        }
    }
}

impl Serialize for std::time::Duration {
    /// `{ "secs": u64, "nanos": u32 }`, matching real serde's encoding.
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("secs".to_string(), Content::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Content::U64(self.subsec_nanos() as u64),
            ),
        ])
    }
}
impl Deserialize for std::time::Duration {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let m = c
            .as_map()
            .ok_or_else(|| DeError::expected("map", c, "Duration"))?;
        let secs = content_field(m, "secs")
            .map(u64::from_content)
            .transpose()?
            .ok_or_else(|| DeError::missing_field("Duration", "secs"))?;
        let nanos = content_field(m, "nanos")
            .map(u32::from_content)
            .transpose()?
            .ok_or_else(|| DeError::missing_field("Duration", "nanos"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence", c, "Vec"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence", c, "VecDeque"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence", c, "BTreeSet"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

/// Serialize a map key: must render as a string (matching JSON's
/// string-keyed objects). Newtype wrappers over `String` (e.g. node ids)
/// satisfy this through their derived impls; integers are rendered in
/// decimal like serde_json does.
fn key_to_string(c: Content) -> Result<String, DeError> {
    match c {
        Content::Str(s) => Ok(s),
        Content::I64(v) => Ok(v.to_string()),
        Content::U64(v) => Ok(v.to_string()),
        other => Err(DeError::custom(format!(
            "map key must serialize to a string, got {}",
            other.kind()
        ))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_to_string(k.to_content()).expect("unsupported map key"),
                        v.to_content(),
                    )
                })
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::expected("map", c, "BTreeMap"))?
            .iter()
            .map(|(k, v)| {
                Ok((
                    K::from_content(&Content::Str(k.clone()))?,
                    V::from_content(v)?,
                ))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // Deterministic output: sort by rendered key.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_to_string(k.to_content()).expect("unsupported map key"),
                    v.to_content(),
                )
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::expected("map", c, "HashMap"))?
            .iter()
            .map(|(k, v)| {
                Ok((
                    K::from_content(&Content::Str(k.clone()))?,
                    V::from_content(v)?,
                ))
            })
            .collect()
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c
                    .as_seq()
                    .ok_or_else(|| DeError::expected("sequence", c, "tuple"))?;
                let expected = [$($n),+].len();
                if seq.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {expected}, got {}",
                        seq.len()
                    )));
                }
                Ok(($($t::from_content(&seq[$n])?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(
            i32::from_content(&42i32.to_content()).unwrap(),
            42,
            "i32 roundtrip"
        );
        assert_eq!(u64::from_content(&7u64.to_content()).unwrap(), 7);
        assert_eq!(
            String::from_content(&"frog".to_string().to_content()).unwrap(),
            "frog"
        );
        assert_eq!(
            Option::<i32>::from_content(&Content::Null).unwrap(),
            None::<i32>
        );
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_content(&v.to_content()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        assert_eq!(
            BTreeMap::<String, f64>::from_content(&m.to_content()).unwrap(),
            m
        );
    }

    #[test]
    fn out_of_range_is_error() {
        assert!(u8::from_content(&Content::I64(300)).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
    }
}
