//! Vendored, dependency-free stand-in for the `proptest` surface this
//! workspace uses: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, `prop_oneof!`, `Just`, `any`, range and tuple
//! strategies, `collection::vec`, and `Strategy::prop_map`.
//!
//! Differences from the real crate, deliberate for an offline build:
//! cases are generated from a seed derived deterministically from the
//! test's module path and case index (reproducible across runs and
//! machines), and failing inputs are reported but not shrunk. Assertion
//! macros panic (the runner catches the panic, prints the generated
//! inputs, and re-raises), so test bodies need no `Result` plumbing.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic RNG and per-test configuration.

    /// SplitMix64: tiny, full-period, plenty for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Deterministic stream for one test case: seeded from the test
        /// identifier and the case index.
        pub fn for_case(test_id: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_id.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            TestRng(h ^ ((case as u64) << 32 | 0x9E3779B9))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of value generated.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights must sum > 0.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights are exhaustive")
    }
}

// --- ranges ----------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// --- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+) ;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A0, A1)
    (A0, A1, A2)
    (A0, A1, A2, A3)
    (A0, A1, A2, A3, A4)
    (A0, A1, A2, A3, A4, A5)
}

// --- any / Arbitrary -------------------------------------------------------

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.below(5) == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- collections -----------------------------------------------------------

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy over `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// --- string patterns -------------------------------------------------------

/// A `&str` in strategy position is interpreted as a regex-subset
/// pattern, like the real proptest: literal characters, `[...]` classes
/// with ranges, `\d`/`\w`/`\s` escapes, and `{n}` / `{n,m}` / `?` /
/// `+` / `*` quantifiers (unbounded repetition capped at 8).
mod string {
    use super::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Atom {
        Lit(char),
        /// Inclusive character ranges; singletons are `(c, c)`.
        Class(Vec<(char, char)>),
    }

    #[derive(Debug, Clone)]
    pub struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    pub fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = match chars.next() {
                            Some(']') => break,
                            Some('\\') => chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                            Some(ch) => ch,
                            None => panic!("unterminated class in {pattern:?}"),
                        };
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            match chars.next() {
                                Some(']') => {
                                    ranges.push((lo, lo));
                                    ranges.push(('-', '-'));
                                    break;
                                }
                                Some(hi) => ranges.push((lo, hi)),
                                None => panic!("unterminated class in {pattern:?}"),
                            }
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    Atom::Class(ranges)
                }
                '\\' => match chars.next() {
                    Some('d') => Atom::Class(vec![('0', '9')]),
                    Some('w') => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    Some('s') => Atom::Lit(' '),
                    Some(ch) => Atom::Lit(ch),
                    None => panic!("dangling escape in {pattern:?}"),
                },
                '.' => Atom::Class(vec![(' ', '~')]),
                ch => Atom::Lit(ch),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for ch in chars.by_ref() {
                        if ch == '}' {
                            break;
                        }
                        spec.push(ch);
                    }
                    let parse_n = |s: &str| {
                        s.parse::<usize>()
                            .unwrap_or_else(|_| panic!("bad repeat count {s:?} in {pattern:?}"))
                    };
                    match spec.split_once(',') {
                        Some((lo, hi)) => (parse_n(lo), parse_n(hi)),
                        None => {
                            let n = parse_n(&spec);
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "empty repeat range in {pattern:?}");
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub fn generate(pieces: &[Piece], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in pieces {
            let span = (piece.max - piece.min) as u64 + 1;
            let count = piece.min + rng.below(span) as usize;
            for _ in 0..count {
                match &piece.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                            .sum();
                        let mut idx = rng.below(total);
                        for (lo, hi) in ranges {
                            let size = (*hi as u64) - (*lo as u64) + 1;
                            if idx < size {
                                out.push(
                                    char::from_u32(*lo as u32 + idx as u32)
                                        .expect("class range spans invalid codepoint"),
                                );
                                break;
                            }
                            idx -= size;
                        }
                    }
                }
            }
        }
        out
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate(&string::parse(self), rng)
    }
}

// --- option ----------------------------------------------------------------

/// Strategies for `Option`, mirroring `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // `Some` with probability 1/2, like the real default.
            if rng.below(2) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Some` of `strategy` half the time, `None` otherwise.
    pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
        OptionStrategy(strategy)
    }
}

// --- macros ----------------------------------------------------------------

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, Strategy,
    };
}

/// Assert inside a property test; on failure the runner reports the
/// generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted (or unweighted) choice between strategies yielding the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($( 1 => $strat ),+)
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// expands to a `#[test]` that runs the body over generated inputs,
/// printing the inputs of a failing case before re-raising its panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __test_id = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__test_id, __case);
                let mut __inputs: Vec<String> = Vec::new();
                $(
                    let __value = $crate::Strategy::generate(&($strat), &mut __rng);
                    __inputs.push(format!("{} = {:?}", stringify!($pat), __value));
                    let $pat = __value;
                )+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs:\n  {}",
                        __test_id,
                        __case + 1,
                        __config.cases,
                        __inputs.join("\n  "),
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds and map composes.
        #[test]
        fn ranges_and_map(x in 0u8..8, y in 1u8..=12, e in even(), f in -0.5f64..0.5) {
            prop_assert!(x < 8);
            prop_assert!((1..=12).contains(&y));
            prop_assert_eq!(e % 2, 0);
            prop_assert!((-0.5..0.5).contains(&f));
        }

        #[test]
        fn collections_and_oneof(
            v in collection::vec(any::<u8>(), 0..16),
            exact in collection::vec(0.0f64..1.0, 3),
            pick in prop_oneof![4 => Just(0u8), 1 => 1u8..3],
            mut sortable in collection::vec(any::<u32>(), 1..10),
        ) {
            prop_assert!(v.len() < 16);
            prop_assert_eq!(exact.len(), 3);
            prop_assert!(pick < 3);
            sortable.sort_unstable();
            prop_assert!(sortable.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
