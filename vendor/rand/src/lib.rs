//! Vendored, dependency-free stand-in for the parts of `rand` 0.8 this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, the
//! `Rng` extension methods `gen` / `gen_range`, and
//! `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! deterministic, and well distributed. Streams are NOT bit-compatible
//! with the real `rand` crate, which is fine here: the workspace only
//! relies on determinism for a fixed seed, never on specific values.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching the subset of `rand::SeedableRng`
/// used here.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Element types `gen_range` can produce (mirrors
/// `rand::distributions::uniform::SampleUniform`). The per-type
/// sampling logic lives here so that [`SampleRange`] can have a single
/// blanket impl per range shape — that blanket impl is what lets the
/// compiler unify `T` with unsuffixed literals in `gen_range(5.0..35.0)`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draw a uniform value from `[lo, hi)` (or `[lo, hi]` when
    /// `inclusive`). Panics if the range is empty, like the real `rand`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges that `Rng::gen_range` accepts, producing elements of type `T`.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics if the range is
    /// empty, like the real `rand`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                _inclusive: bool,
                rng: &mut R,
            ) -> $t {
                // Floats treat `..=` like `..`, as the real rand
                // effectively does for continuous distributions.
                assert!(lo < hi, "cannot sample empty range");
                let unit = <$t as Standard>::generate(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the conventional way to fill a
            // xoshiro state from a small seed.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same engine here.
    pub type SmallRng = StdRng;
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0..3);
            assert!((0..3).contains(&v));
            let f = rng.gen_range(-0.15..0.15);
            assert!((-0.15..0.15).contains(&f));
            let d = rng.gen_range(1..=28u8);
            assert!((1..=28).contains(&d));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
