//! Vendored, dependency-free stand-in for the `criterion` surface this
//! workspace's benches use. It is a real (if simple) harness: each
//! benchmark is warmed up, then timed over enough iterations to fill a
//! short measurement window, and mean time per iteration is printed
//! together with derived throughput.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh setup for every routine call.
    PerIteration,
    /// Small batches of routine calls per setup.
    SmallInput,
    /// Large batches of routine calls per setup.
    LargeInput,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier rendered from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }

    /// Identifier from a function name plus parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher<'a> {
    measurement: Duration,
    result: &'a mut Option<Sample>,
}

struct Sample {
    mean: Duration,
    iters: u64,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: estimate the per-iteration cost.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));
        let target = self.measurement;
        let iters = (target.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        *self.result = Some(Sample {
            mean: total / (iters as u32).max(1),
            iters,
        });
    }

    /// Time `routine` over values produced by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let first = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measurement.as_nanos() / first.as_nanos()).clamp(1, 100_000) as u64;

        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        *self.result = Some(Sample {
            mean: total / (iters as u32).max(1),
            iters,
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the sample count (accepted for API compatibility; this
    /// harness sizes iterations from the measurement window instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement window per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement = t;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        let mut result = None;
        let mut b = Bencher {
            measurement: self.criterion.measurement,
            result: &mut result,
        };
        f(&mut b);
        report(&full, result, self.throughput);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let mut result = None;
        let mut b = Bencher {
            measurement: self.criterion.measurement,
            result: &mut result,
        };
        f(&mut b, input);
        report(&full, result, self.throughput);
        self
    }

    /// Finish the group (prints nothing extra; symmetry with criterion).
    pub fn finish(&mut self) {}
}

fn report(name: &str, sample: Option<Sample>, throughput: Option<Throughput>) {
    let Some(s) = sample else {
        println!("{name:<48} (no measurement)");
        return;
    };
    let per_iter = s.mean;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter.as_nanos() > 0 => {
            let per_sec = n as f64 * 1e9 / per_iter.as_nanos() as f64;
            format!("  {per_sec:>12.0} elem/s")
        }
        Some(Throughput::Bytes(n)) if per_iter.as_nanos() > 0 => {
            let per_sec = n as f64 * 1e9 / per_iter.as_nanos() as f64;
            format!("  {:>12.1} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!(
        "{name:<48} {:>12}  ({} iters){rate}",
        format_duration(per_iter),
        s.iters
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The benchmark harness entry object.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            // Short window: these are smoke benches in an offline build.
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            criterion: self,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut result = None;
        let mut b = Bencher {
            measurement: self.measurement,
            result: &mut result,
        };
        f(&mut b);
        report(id, result, None);
        self
    }
}

/// Define a benchmark group function, like `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark `main`, like `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
